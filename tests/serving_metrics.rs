//! Serving-metrics agreement contract (`ci-obs`).
//!
//! The [`ci_rank::MetricsRegistry`] hung off every snapshot is fed by
//! sessions with relaxed atomic adds; this test replays the fingerprint
//! workloads while summing every per-run [`ci_search::SearchStats`] by
//! hand and asserts the registry's totals agree exactly — single-threaded
//! and across concurrently serving sessions.

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_rank_suite::fingerprint::{build, cases};

/// Hand-summed expectations for one replayed workload.
#[derive(Default)]
struct Expected {
    queries: u64,
    errors: u64,
    answers: u64,
    pops: u64,
    registered: u64,
    bound_pruned: u64,
    distance_pruned: u64,
    merges: u64,
    truncated: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_overflow: u64,
}

fn replay(session: &ci_rank::QuerySession<'_>, queries: &[String]) -> Expected {
    let mut e = Expected::default();
    for q in queries {
        match session.search_with_stats(q) {
            Ok((answers, stats)) => {
                e.queries += 1;
                e.answers += answers.len() as u64;
                e.pops += stats.pops as u64;
                e.registered += stats.registered as u64;
                e.bound_pruned += stats.bound_pruned as u64;
                e.distance_pruned += stats.distance_pruned as u64;
                e.merges += stats.merges as u64;
                e.truncated += u64::from(stats.truncation.is_some());
                if let Some(c) = &stats.cache {
                    e.cache_hits += c.hits as u64;
                    e.cache_misses += c.misses as u64;
                    e.cache_overflow += c.overflow as u64;
                }
            }
            Err(_) => e.errors += 1,
        }
    }
    e
}

fn assert_agrees(delta: &ci_rank::MetricsSnapshot, e: &Expected, label: &str) {
    assert_eq!(delta.queries, e.queries, "{label}: queries");
    assert_eq!(delta.errors, e.errors, "{label}: errors");
    assert_eq!(delta.answers, e.answers, "{label}: answers");
    assert_eq!(delta.pops, e.pops, "{label}: pops");
    assert_eq!(delta.registered, e.registered, "{label}: registered");
    assert_eq!(delta.bound_pruned, e.bound_pruned, "{label}: bound_pruned");
    assert_eq!(
        delta.distance_pruned, e.distance_pruned,
        "{label}: distance_pruned"
    );
    assert_eq!(delta.merges, e.merges, "{label}: merges");
    assert_eq!(delta.truncated_total(), e.truncated, "{label}: truncations");
    assert_eq!(delta.cache_hits, e.cache_hits, "{label}: cache hits");
    assert_eq!(delta.cache_misses, e.cache_misses, "{label}: cache misses");
    assert_eq!(
        delta.cache_overflow, e.cache_overflow,
        "{label}: cache overflow"
    );
    // Every successful query lands in exactly one latency bucket, and the
    // total time is consistent with the bucketed counts.
    assert_eq!(
        delta.latency_buckets.iter().sum::<u64>(),
        e.queries,
        "{label}: histogram counts sum to the query count"
    );
}

#[test]
fn metrics_agree_with_search_stats_totals() {
    for (label, kind, data, queries) in cases() {
        let snap = build(&data.db, kind, 1).unwrap();
        let before = snap.metrics().snapshot();
        let session = snap.session();
        let expected = replay(&session, &queries);
        assert!(expected.queries > 0, "{label}: workload searches for real");
        let delta = snap.metrics().snapshot().delta_since(&before);
        assert_agrees(&delta, &expected, label);

        // The JSON snapshot carries the same totals.
        let json = snap.metrics().snapshot().to_json();
        assert!(
            json.contains(&format!("\"pops\":{}", delta.pops)),
            "{label}: {json}"
        );
        assert!(
            json.contains("\"latency_histogram_us\":["),
            "{label}: {json}"
        );
    }
}

#[test]
fn metrics_are_exact_across_concurrent_sessions() {
    let (label, kind, data, queries) = cases().remove(1); // zipf/star
    let snap = build(&data.db, kind, 1).unwrap();
    const THREADS: usize = 4;
    let before = snap.metrics().snapshot();
    let per_thread: Vec<Expected> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| scope.spawn(|| replay(&snap.session(), &queries)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut total = Expected::default();
    for e in &per_thread {
        total.queries += e.queries;
        total.errors += e.errors;
        total.answers += e.answers;
        total.pops += e.pops;
        total.registered += e.registered;
        total.bound_pruned += e.bound_pruned;
        total.distance_pruned += e.distance_pruned;
        total.merges += e.merges;
        total.truncated += e.truncated;
        total.cache_hits += e.cache_hits;
        total.cache_misses += e.cache_misses;
        total.cache_overflow += e.cache_overflow;
    }
    let delta = snap.metrics().snapshot().delta_since(&before);
    assert_agrees(&delta, &total, label);
    assert_eq!(delta.queries, (THREADS as u64) * per_thread[0].queries);
}
