//! Convergence regression guard for the Eq. 1 power iteration.
//!
//! With teleport c = 0.15 the iteration contracts by at least (1 − c) per
//! step, so the default epsilon of 1e-10 must be reached well inside the
//! 200-iteration cap: ln(1e-10)/ln(0.85) ≈ 142. A regression that slows
//! convergence (wrong dangling handling, a normalization bug, a broken
//! delta) shows up here as a blown iteration budget or `converged: false`
//! long before it corrupts ranking quality downstream — and the parallel
//! matvec must not change the iterate sequence at all, so the diagnostics
//! themselves are compared bit-for-bit across thread counts.

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_datagen::{generate_dblp, sample_database, DblpConfig};
use ci_graph::{build_graph, Graph, WeightConfig};
use ci_walk::{pagerank_with_stats, PowerOptions};

/// Iteration ceiling: the contraction argument gives ≈ 142 iterations for
/// epsilon 1e-10; real graphs converge faster. 180 leaves slack for graph
/// structure while still catching anything that degrades the rate.
const ITERATION_BOUND: usize = 180;

fn graphs() -> Vec<(&'static str, Graph)> {
    let data = generate_dblp(DblpConfig {
        papers: 140,
        authors: 70,
        conferences: 6,
        seed: 17,
        ..Default::default()
    });
    let full = build_graph(&data.db, &WeightConfig::dblp_default(), None);
    // Sampling leaves dangling stubs and isolated nodes — the slowest
    // configuration for the dangling-mass redistribution.
    let sampled = sample_database(&data.db, 0.5, 23).db;
    let sampled = build_graph(&sampled, &WeightConfig::dblp_default(), None);
    vec![("full", full), ("sampled", sampled)]
}

#[test]
fn power_iteration_converges_within_bound() {
    for (name, graph) in graphs() {
        let (importance, conv) = pagerank_with_stats(&graph, PowerOptions::default());
        assert!(conv.converged, "{name}: power iteration did not converge");
        assert!(
            conv.iterations <= ITERATION_BOUND,
            "{name}: {} iterations exceeds the {ITERATION_BOUND} regression bound",
            conv.iterations
        );
        assert!(
            conv.residual <= 1e-10,
            "{name}: final residual {} above epsilon",
            conv.residual
        );
        // The result is a probability distribution (Eq. 1 is a stochastic
        // fixed point): positive everywhere, summing to 1.
        let sum: f64 = importance.values().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{name}: mass sum {sum}");
        assert!(importance.values().iter().all(|&x| x > 0.0));
    }
}

#[test]
fn convergence_diagnostics_are_thread_invariant() {
    for (name, graph) in graphs() {
        let (base_imp, base) = pagerank_with_stats(&graph, PowerOptions::default());
        for threads in [2, 4] {
            let (imp, conv) = pagerank_with_stats(
                &graph,
                PowerOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(conv.iterations, base.iterations, "{name} at {threads}");
            assert_eq!(conv.converged, base.converged, "{name} at {threads}");
            assert_eq!(
                conv.residual.to_bits(),
                base.residual.to_bits(),
                "{name}: residual diverged at {threads} threads"
            );
            let base_bits: Vec<u64> = base_imp.values().iter().map(|x| x.to_bits()).collect();
            let bits: Vec<u64> = imp.values().iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                bits, base_bits,
                "{name}: iterate diverged at {threads} threads"
            );
        }
    }
}
