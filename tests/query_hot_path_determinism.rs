//! Replay-fingerprint contract of the query hot path.
//!
//! The pinned constants below were captured with
//! `cargo run --release --example query_fingerprint` *before* the hot-path
//! optimizations landed (flat generational oracle cache, pooled candidate
//! arena, incremental flow/bound maintenance). Every configuration this
//! file replays must reproduce them exactly:
//!
//! * engines built at 1, 2, and 8 worker threads (the offline build is
//!   bit-deterministic, so the query layer sees identical inputs);
//! * a fresh `QuerySession` per query (the semantics the constants were
//!   captured under) and one session reused across the whole workload
//!   (warm oracle cache + warm candidate pool — both must be observably
//!   transparent).
//!
//! A warm reused session must also reach an allocation steady state: a
//! second replay of the same workload may not construct a single new
//! candidate slot ([`ci_rank::QuerySession::scratch_slots_allocated`]).

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_rank_suite::fingerprint::{build, cases, workload_fingerprint, workload_fingerprint_reused};

/// Pre-optimization baselines, one per `fingerprint::cases()` entry.
const BASELINES: [(&str, u64); 3] = [
    ("zipf/naive", 0x2040_1ca2_234e_de89),
    ("zipf/star", 0xabd2_021b_5d69_7625),
    ("midsize/star", 0xe045_5ae3_d748_6160),
];

fn baseline(label: &str) -> u64 {
    BASELINES
        .iter()
        .find(|(l, _)| *l == label)
        .map(|&(_, fp)| fp)
        .unwrap_or_else(|| panic!("no baseline for {label}"))
}

#[test]
fn replay_matches_pre_optimization_baselines() {
    for (label, kind, data, queries) in cases() {
        for threads in [1usize, 2, 8] {
            let snap = build(&data.db, kind.clone(), threads).unwrap();
            let fresh = workload_fingerprint(&snap, &queries);
            assert_eq!(
                fresh,
                baseline(label),
                "{label}: fresh-session replay diverged from the \
                 pre-optimization baseline (build_threads={threads})"
            );

            let session = snap.session();
            let reused = workload_fingerprint_reused(&session, &queries);
            assert_eq!(
                reused,
                baseline(label),
                "{label}: warm reused-session replay diverged \
                 (build_threads={threads})"
            );
        }
    }
}

#[test]
fn warm_session_replays_without_allocating() {
    for (label, kind, data, queries) in cases() {
        let snap = build(&data.db, kind, 1).unwrap();
        let session = snap.session();
        // First replay warms the pool up to the workload's working set.
        let first = workload_fingerprint_reused(&session, &queries);
        let warm_slots = session.scratch_slots_allocated();
        assert!(warm_slots > 0, "{label}: the workload searches for real");
        // Steady state: an identical replay reuses every slot.
        let second = workload_fingerprint_reused(&session, &queries);
        assert_eq!(first, second, "{label}: warm replay changed results");
        assert_eq!(
            session.scratch_slots_allocated(),
            warm_slots,
            "{label}: steady-state replay constructed new candidate slots"
        );
    }
}
