//! Replay-fingerprint contract of the query hot path.
//!
//! The pinned constants below were captured with
//! `cargo run --release --example query_fingerprint` *before* the hot-path
//! optimizations landed (flat generational oracle cache, pooled candidate
//! arena, incremental flow/bound maintenance). Every configuration this
//! file replays must reproduce them exactly:
//!
//! * engines built at 1, 2, and 8 worker threads (the offline build is
//!   bit-deterministic, so the query layer sees identical inputs);
//! * a fresh `QuerySession` per query (the semantics the constants were
//!   captured under) and one session reused across the whole workload
//!   (warm oracle cache + warm candidate pool — both must be observably
//!   transparent).
//!
//! A warm reused session must also reach an allocation steady state: a
//! second replay of the same workload may not construct a single new
//! candidate slot ([`ci_rank::QuerySession::scratch_slots_allocated`]).

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_rank_suite::fingerprint::{build, cases, workload_fingerprint, workload_fingerprint_reused};

/// Pre-optimization baselines, one per `fingerprint::cases()` entry.
const BASELINES: [(&str, u64); 3] = [
    ("zipf/naive", 0x2040_1ca2_234e_de89),
    ("zipf/star", 0xabd2_021b_5d69_7625),
    ("midsize/star", 0xe045_5ae3_d748_6160),
];

fn baseline(label: &str) -> u64 {
    BASELINES
        .iter()
        .find(|(l, _)| *l == label)
        .map(|&(_, fp)| fp)
        .unwrap_or_else(|| panic!("no baseline for {label}"))
}

#[test]
fn replay_matches_pre_optimization_baselines() {
    for (label, kind, data, queries) in cases() {
        for threads in [1usize, 2, 8] {
            let snap = build(&data.db, kind.clone(), threads).unwrap();
            let fresh = workload_fingerprint(&snap, &queries);
            assert_eq!(
                fresh,
                baseline(label),
                "{label}: fresh-session replay diverged from the \
                 pre-optimization baseline (build_threads={threads})"
            );

            let session = snap.session();
            let reused = workload_fingerprint_reused(&session, &queries);
            assert_eq!(
                reused,
                baseline(label),
                "{label}: warm reused-session replay diverged \
                 (build_threads={threads})"
            );
        }
    }
}

/// Observability contract (`ci-obs`): tracing is observational only.
///
/// The same workload replayed at [`ci_rank::TraceLevel::Off`] and
/// [`ci_rank::TraceLevel::Full`] must reproduce the pinned
/// pre-optimization fingerprints bit for bit — trace emission sits inside
/// the search loop, so any behavioral leak (an extra oracle probe, a
/// reordered admission) shows up as a changed hash. The disabled path
/// must also be allocation-free: a session that never traces must never
/// even allocate the event buffer.
#[test]
fn tracing_is_fingerprint_neutral() {
    use ci_rank::TraceLevel;
    for (label, kind, data, queries) in cases() {
        let snap = build(&data.db, kind, 1).unwrap();

        let off = snap.session();
        let off_fp = workload_fingerprint_reused(&off, &queries);
        assert_eq!(
            off_fp,
            baseline(label),
            "{label}: TraceLevel::Off replay diverged from the baseline"
        );
        let off_trace = off.last_trace();
        assert_eq!(
            off_trace.buffer_capacity(),
            0,
            "{label}: the Off path allocated a trace buffer"
        );
        assert!(off_trace.events().is_empty());
        assert_eq!(off_trace.dropped(), 0);

        let full = snap.session().with_trace(TraceLevel::Full);
        let full_fp = workload_fingerprint_reused(&full, &queries);
        assert_eq!(
            full_fp,
            baseline(label),
            "{label}: TraceLevel::Full changed the replay fingerprint"
        );
        let trace = full.last_trace();
        let counts = trace.counts();
        assert!(
            counts.pops > 0 && counts.admits > 0,
            "{label}: full tracing recorded the run ({counts:?})"
        );
    }
}

#[test]
fn warm_session_replays_without_allocating() {
    for (label, kind, data, queries) in cases() {
        let snap = build(&data.db, kind, 1).unwrap();
        let session = snap.session();
        // First replay warms the pool up to the workload's working set.
        let first = workload_fingerprint_reused(&session, &queries);
        let warm_slots = session.scratch_slots_allocated();
        assert!(warm_slots > 0, "{label}: the workload searches for real");
        // Steady state: an identical replay reuses every slot.
        let second = workload_fingerprint_reused(&session, &queries);
        assert_eq!(first, second, "{label}: warm replay changed results");
        assert_eq!(
            session.scratch_slots_allocated(),
            warm_slots,
            "{label}: steady-state replay constructed new candidate slots"
        );
    }
}
