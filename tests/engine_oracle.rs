//! Engine-level exactness: the full `Engine` pipeline (text index →
//! matchers → B&B with the configured star index) agrees with the naive
//! enumeration on real generated data, across diameters and k.

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_datagen::{dblp_workload, generate_dblp, DblpConfig};
use ci_graph::WeightConfig;
use ci_rank::{CiRankConfig, Engine, IndexKind};

fn engine(diameter: u32, k: usize, index: IndexKind) -> (ci_datagen::DblpData, Engine) {
    let data = generate_dblp(DblpConfig {
        papers: 90,
        authors: 50,
        conferences: 5,
        ..Default::default()
    });
    let e = Engine::build(
        &data.db,
        CiRankConfig {
            weights: WeightConfig::dblp_default(),
            diameter,
            k,
            index,
            // Exact mode: no caps, so the naive comparison is an oracle.
            max_expansions: None,
            naive_max_paths: 100_000,
            naive_max_combinations: 2_000_000,
            ..Default::default()
        },
    )
    .unwrap();
    (data, e)
}

#[test]
fn bnb_equals_naive_through_the_engine() {
    for (d, k) in [(2, 3), (3, 5), (4, 5)] {
        let (data, e) = engine(d, k, IndexKind::Star { relations: None });
        for q in dblp_workload(&data, 6, 17) {
            let query = q.keywords.join(" ");
            let bnb = e.search(&query).unwrap();
            let (naive, naive_stats) = e.search_naive(&query).unwrap();
            assert!(
                !naive_stats.truncated(),
                "oracle must be exhaustive (D={d})"
            );
            assert_eq!(bnb.len(), naive.len(), "query {query:?} (D={d}, k={k})");
            for (a, b) in bnb.iter().zip(&naive) {
                assert!(
                    (a.score - b.score).abs() < 1e-9 * a.score.max(1.0),
                    "query {query:?} (D={d}): {} vs {}",
                    a.score,
                    b.score
                );
            }
        }
    }
}

#[test]
fn k_truncates_but_preserves_prefix() {
    let (data, e5) = engine(3, 5, IndexKind::Star { relations: None });
    let (_, e2) = engine(3, 2, IndexKind::Star { relations: None });
    for q in dblp_workload(&data, 5, 23) {
        let query = q.keywords.join(" ");
        let five = e5.search(&query).unwrap();
        let two = e2.search(&query).unwrap();
        assert!(two.len() <= 2);
        assert!(two.len() <= five.len());
        for (a, b) in five.iter().zip(&two) {
            assert!((a.score - b.score).abs() < 1e-9, "top-k prefix stability");
        }
    }
}
