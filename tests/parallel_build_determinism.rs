//! Differential determinism harness for the parallel offline build.
//!
//! The build pipeline fans out over `CiRankConfig::build_threads` workers
//! in two places: the power-iteration matvec behind the importance vector
//! (Eq. 1) and the per-source traversals of the §V distance indexes. Both
//! are engineered to be *bit-identical* to the serial path — the matvec
//! gathers over a transpose whose in-edge order reproduces the serial
//! scatter's float-addition order, and index rows are merged back in
//! source order. This harness is the contract: snapshots built at 1, 2,
//! and 8 threads over generated datasets must agree byte-for-byte on the
//! `DS`/`LS` tables and bit-for-bit on the importance and dampening
//! vectors, and a replayed query workload must return identical top-k
//! lists (scores compared via `f64::to_bits`) and identical
//! [`SearchStats`] counters.
//!
//! CI additionally runs this file on a 2-core matrix job with
//! `CI_RANK_BUILD_THREADS` set, which appends that count to the tested
//! set so real hardware parallelism is exercised, not just oversubscribed
//! threads.

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_datagen::{dblp_workload, generate_dblp, sample_database, DblpConfig};
use ci_graph::WeightConfig;
use ci_index::DistIndex;
use ci_rank::{CiRankConfig, EngineBuilder, EngineSnapshot, IndexKind};
use ci_search::SearchStats;
use ci_storage::Database;

/// Thread counts under differential test: serial baseline, the smallest
/// parallel fan-out, and heavy oversubscription (8 workers regardless of
/// core count — chunking must not depend on scheduling). CI's matrix job
/// injects its own count via `CI_RANK_BUILD_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(env) = std::env::var("CI_RANK_BUILD_THREADS") {
        if let Ok(n) = env.trim().parse::<usize>() {
            if n >= 1 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// Dataset (a): a 40% sample of a mid-size synthetic DBLP — sampling
/// leaves dangling citation stubs and isolated nodes, exercising the
/// dangling-mass path of the power iteration.
fn sampled_dataset() -> Database {
    let data = generate_dblp(DblpConfig {
        papers: 150,
        authors: 80,
        conferences: 6,
        seed: 7,
        ..Default::default()
    });
    sample_database(&data.db, 0.4, 11).db
}

/// Dataset (b): a heavily Zipf-skewed DBLP — hub authors concentrate the
/// edge mass, so contiguous source chunks get very uneven work (the
/// scenario where a nondeterministic work-stealing scheme would diverge).
fn skewed_dataset() -> ci_datagen::DblpData {
    generate_dblp(DblpConfig {
        papers: 120,
        authors: 60,
        conferences: 5,
        zipf_exponent: 1.7,
        seed: 13,
        ..Default::default()
    })
}

fn config(index: IndexKind, threads: usize) -> CiRankConfig {
    CiRankConfig {
        weights: WeightConfig::dblp_default(),
        k: 5,
        max_expansions: Some(3000),
        index,
        build_threads: threads,
        ..Default::default()
    }
}

fn build(db: &Database, index: IndexKind, threads: usize) -> EngineSnapshot {
    EngineBuilder::new(config(index, threads))
        .build(db)
        .expect("build must succeed at every thread count")
}

/// Canonical bytes of the snapshot's distance index (`DS`/`LS` tables).
fn index_bytes(snap: &EngineSnapshot) -> Vec<u8> {
    match snap.dist_index() {
        DistIndex::None => Vec::new(),
        DistIndex::Naive(ix) => ix.table_bytes(),
        DistIndex::Star(ix) => ix.table_bytes(),
    }
}

fn f64_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|x| x.to_bits()).collect()
}

fn index_kinds() -> Vec<(&'static str, IndexKind)> {
    vec![
        ("naive", IndexKind::Naive),
        ("star", IndexKind::Star { relations: None }),
    ]
}

#[test]
fn snapshots_are_bit_identical_across_thread_counts() {
    let datasets = vec![
        ("sampled", sampled_dataset()),
        ("zipf", skewed_dataset().db),
    ];
    for (ds_name, db) in &datasets {
        for (ix_name, kind) in index_kinds() {
            let baseline = build(db, kind.clone(), 1);
            let base_tables = index_bytes(&baseline);
            assert!(
                !base_tables.is_empty(),
                "{ds_name}/{ix_name}: determinism test must compare non-trivial tables"
            );
            let base_importance = f64_bits(baseline.importance().values());
            let base_damp = f64_bits(baseline.dampening_vector());
            for threads in thread_counts() {
                let snap = build(db, kind.clone(), threads);
                assert_eq!(
                    index_bytes(&snap),
                    base_tables,
                    "{ds_name}/{ix_name}: DS/LS tables diverged at {threads} threads"
                );
                assert_eq!(
                    f64_bits(snap.importance().values()),
                    base_importance,
                    "{ds_name}/{ix_name}: importance diverged at {threads} threads"
                );
                assert_eq!(
                    f64_bits(snap.dampening_vector()),
                    base_damp,
                    "{ds_name}/{ix_name}: dampening diverged at {threads} threads"
                );
            }
        }
    }
}

/// A fully deterministic fingerprint of one query's outcome: either the
/// top-k list (bit-exact scores + node sets) with its search counters, or
/// the error it produced. Any divergence across thread counts — answers,
/// tie-break order, pruning behaviour, or failure mode — changes it.
type QueryFingerprint = Result<(Vec<(u64, Vec<u32>)>, SearchStats), String>;

fn replay(snap: &EngineSnapshot, queries: &[String]) -> Vec<QueryFingerprint> {
    queries
        .iter()
        .map(|q| {
            snap.session()
                .search_with_stats(q)
                .map(|(answers, stats)| {
                    let list: Vec<(u64, Vec<u32>)> = answers
                        .iter()
                        .map(|a| {
                            (
                                a.score.to_bits(),
                                a.nodes.iter().map(|n| n.node.0).collect(),
                            )
                        })
                        .collect();
                    (list, stats)
                })
                .map_err(|e| e.to_string())
        })
        .collect()
}

#[test]
fn replayed_workload_matches_across_thread_counts() {
    let data = skewed_dataset();
    let queries: Vec<String> = dblp_workload(&data, 12, 29)
        .into_iter()
        .map(|q| q.keywords.join(" "))
        .collect();
    assert!(queries.len() >= 8, "workload generation came up short");
    for (ix_name, kind) in index_kinds() {
        let expected = replay(&build(&data.db, kind.clone(), 1), &queries);
        assert!(
            expected
                .iter()
                .any(|f| matches!(f, Ok((list, _)) if !list.is_empty())),
            "{ix_name}: workload must produce at least one non-empty result list"
        );
        for threads in thread_counts() {
            let got = replay(&build(&data.db, kind.clone(), threads), &queries);
            assert_eq!(
                got, expected,
                "{ix_name}: replayed workload diverged at {threads} threads"
            );
        }
    }
}
