//! Cross-crate persistence: a generated database survives dump → load with
//! identical search behaviour (same graph, same importance, same answers).

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_datagen::{dblp_workload, generate_dblp, DblpConfig};
use ci_graph::WeightConfig;
use ci_rank::{CiRankConfig, Engine};
use ci_storage::persist;

#[test]
fn reloaded_database_searches_identically() {
    let data = generate_dblp(DblpConfig {
        papers: 150,
        authors: 80,
        conferences: 6,
        ..Default::default()
    });

    let mut buf = Vec::new();
    persist::dump(&data.db, &mut buf).unwrap();
    let reloaded = persist::load(&mut buf.as_slice()).unwrap();

    assert_eq!(reloaded.tuple_count(), data.db.tuple_count());
    assert_eq!(reloaded.link_count(), data.db.link_count());

    let cfg = CiRankConfig {
        weights: WeightConfig::dblp_default(),
        ..Default::default()
    };
    let original = Engine::build(&data.db, cfg.clone()).unwrap();
    let restored = Engine::build(&reloaded, cfg).unwrap();

    assert_eq!(original.graph().node_count(), restored.graph().node_count());
    assert_eq!(original.graph().edge_count(), restored.graph().edge_count());

    for q in dblp_workload(&data, 8, 3) {
        let query = q.keywords.join(" ");
        let a = original.search(&query).unwrap();
        let b = restored.search(&query).unwrap();
        assert_eq!(a.len(), b.len(), "query {query:?}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.tree.canonical_key(), y.tree.canonical_key());
        }
    }
}

#[test]
fn dump_is_stable_across_runs() {
    let gen = || {
        generate_dblp(DblpConfig {
            papers: 60,
            authors: 30,
            conferences: 4,
            ..Default::default()
        })
    };
    let mut a = Vec::new();
    persist::dump(&gen().db, &mut a).unwrap();
    let mut b = Vec::new();
    persist::dump(&gen().db, &mut b).unwrap();
    assert_eq!(a, b, "generation and dumping are deterministic");
}
