//! Failure-path coverage across the workspace: bad inputs must produce
//! typed errors (or clean empty results), never panics.

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_graph::WeightConfig;
use ci_rank::{CiRankConfig, CiRankError, Engine};
use ci_storage::{schemas, StorageError, TupleId, Value};

#[test]
fn storage_rejects_bad_inputs() {
    let (mut db, t) = schemas::dblp();
    // Arity mismatch.
    assert!(matches!(
        db.insert(t.paper, vec![Value::text("only title")]),
        Err(StorageError::ArityMismatch { .. })
    ));
    // Type mismatch.
    assert!(matches!(
        db.insert(t.paper, vec![Value::int(5), Value::int(5)]),
        Err(StorageError::TypeMismatch { .. })
    ));
    // Link to a missing row.
    let a = db.insert(t.author, vec![Value::text("ada")]).unwrap();
    let ghost = TupleId::new(t.paper, 7);
    assert!(db.link(t.author_paper, a, ghost).is_err());
    // Wrong endpoint table.
    let p = db
        .insert(t.paper, vec![Value::text("x"), Value::int(1)])
        .unwrap();
    assert!(matches!(
        db.link(t.author_paper, p, a),
        Err(StorageError::LinkEndpointMismatch { .. })
    ));
}

#[test]
fn engine_rejects_empty_database() {
    let (db, _) = schemas::dblp();
    assert_eq!(
        Engine::build(&db, CiRankConfig::default()).unwrap_err(),
        CiRankError::EmptyDatabase
    );
}

fn small_engine() -> Engine {
    let (mut db, t) = schemas::dblp();
    let a = db.insert(t.author, vec![Value::text("ada crane")]).unwrap();
    let p = db
        .insert(t.paper, vec![Value::text("lonely paper"), Value::int(2001)])
        .unwrap();
    db.link(t.author_paper, a, p).unwrap();
    Engine::build(
        &db,
        CiRankConfig {
            weights: WeightConfig::dblp_default(),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn engine_rejects_empty_and_oversized_queries() {
    let e = small_engine();
    assert_eq!(e.search("").unwrap_err(), CiRankError::EmptyQuery);
    assert_eq!(e.search(" ,.! ").unwrap_err(), CiRankError::EmptyQuery);
    let huge: String = (0..40).map(|i| format!("kw{i} ")).collect();
    assert!(matches!(
        e.search(&huge).unwrap_err(),
        CiRankError::TooManyKeywords(40)
    ));
}

#[test]
fn unanswerable_and_disconnected_queries_return_empty() {
    let e = small_engine();
    // One keyword matches, the other does not exist.
    assert!(e.search("crane zebra").unwrap().is_empty());
    // Both match but the only answer exceeds a tiny diameter: build an
    // engine with D = 0.
    let (mut db, t) = schemas::dblp();
    let a = db.insert(t.author, vec![Value::text("ada crane")]).unwrap();
    let p = db
        .insert(t.paper, vec![Value::text("lonely paper"), Value::int(2001)])
        .unwrap();
    db.link(t.author_paper, a, p).unwrap();
    let e0 = Engine::build(
        &db,
        CiRankConfig {
            weights: WeightConfig::dblp_default(),
            diameter: 0,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(e0.search("crane lonely").unwrap().is_empty());
    // Single-node answers still work at D = 0.
    assert!(!e0.search("ada crane").unwrap().is_empty());
}

#[test]
fn expansion_cap_reports_truncation_without_breaking() {
    let (mut db, t) = schemas::dblp();
    // A dense little graph.
    let authors: Vec<_> = (0..6)
        .map(|i| {
            db.insert(t.author, vec![Value::text(format!("author number{i}"))])
                .unwrap()
        })
        .collect();
    for i in 0..8 {
        let p = db
            .insert(
                t.paper,
                vec![Value::text(format!("paper {i}")), Value::int(2000)],
            )
            .unwrap();
        for a in authors.iter().take(3 + i % 3) {
            db.link(t.author_paper, *a, p).unwrap();
        }
    }
    let e = Engine::build(
        &db,
        CiRankConfig {
            weights: WeightConfig::dblp_default(),
            max_expansions: Some(2),
            ..Default::default()
        },
    )
    .unwrap();
    let (answers, stats) = e.search_with_stats("number0 number1").unwrap();
    assert!(stats.truncated());
    assert_eq!(
        stats.truncation,
        Some(ci_rank::TruncationReason::Expansions)
    );
    // Truncated runs may return fewer/suboptimal answers but stay sane.
    for a in &answers {
        assert!(a.score > 0.0);
    }
}
