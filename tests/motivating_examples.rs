//! The paper's two motivating examples (§I–II), end to end through the
//! public API:
//!
//! * "Papakonstantinou Ullman" — CI-Rank must rank the heavily cited
//!   TSIMMIS paper first while DISCOVER2 ties the two answers and SPARK
//!   prefers the shorter title;
//! * "Bloom Wood Mortensen" — CI-Rank must pick the popular movie as the
//!   free connector while BANKS ties the movies.

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use ci_graph::WeightConfig;
use ci_rank::{CiRankConfig, Engine, Ranker};
use ci_storage::{schemas, Database, Value};

fn tsimmis_db() -> Database {
    let (mut db, t) = schemas::dblp();
    let papa = db
        .insert(t.author, vec![Value::text("Yannis Papakonstantinou")])
        .unwrap();
    let ullman = db
        .insert(t.author, vec![Value::text("Jeffrey Ullman")])
        .unwrap();
    let mediation = db
        .insert(
            t.paper,
            vec![
                Value::text("Capability Based Mediation in TSIMMIS"),
                Value::int(1997),
            ],
        )
        .unwrap();
    let project = db
        .insert(
            t.paper,
            vec![
                Value::text("The TSIMMIS Project Integration of Heterogeneous Information Sources"),
                Value::int(1995),
            ],
        )
        .unwrap();
    for p in [mediation, project] {
        db.link(t.author_paper, papa, p).unwrap();
        db.link(t.author_paper, ullman, p).unwrap();
    }
    // Citation counts from §II-B: 7 vs 38.
    for i in 0..45 {
        let c = db
            .insert(
                t.paper,
                vec![Value::text(format!("citer number {i}")), Value::int(2005)],
            )
            .unwrap();
        db.link(t.cites, c, if i < 7 { mediation } else { project })
            .unwrap();
    }
    db
}

#[test]
fn tsimmis_example_all_rankers() {
    let db = tsimmis_db();
    let engine = Engine::build(
        &db,
        CiRankConfig {
            weights: WeightConfig::dblp_default(),
            ..Default::default()
        },
    )
    .unwrap();
    let query = "papakonstantinou ullman";
    let pool = engine.candidate_pool(query, 10).unwrap();
    assert_eq!(pool.len(), 2);

    // CI-Rank: the 38-citation paper wins.
    let ci = engine.rank(query, &pool, Ranker::CiRank).unwrap();
    assert!(ci[0].nodes.iter().any(|n| n.text.contains("Heterogeneous")));
    assert!(ci[0].score > ci[1].score);

    // DISCOVER2: a tie — the free paper nodes contribute nothing.
    let d2 = engine.rank(query, &pool, Ranker::Discover2).unwrap();
    assert!(
        (d2[0].score - d2[1].score).abs() < 1e-9,
        "DISCOVER2 must tie: {} vs {}",
        d2[0].score,
        d2[1].score
    );

    // SPARK: the shorter-titled (less important) paper wins — the flaw.
    let spark = engine.rank(query, &pool, Ranker::Spark).unwrap();
    assert!(
        spark[0].nodes.iter().any(|n| n.text.contains("Mediation")),
        "SPARK prefers the shorter title"
    );
}

#[test]
fn costar_example_banks_vs_ci() {
    let (mut db, t) = schemas::imdb();
    let trio: Vec<_> = ["orlan bloomfield", "elia woodward", "vigo mortenhall"]
        .iter()
        .map(|n| db.insert(t.actor, vec![Value::text(*n)]).unwrap())
        .collect();
    let hit = db
        .insert(
            t.movie,
            vec![Value::text("the golden voyage"), Value::int(2001)],
        )
        .unwrap();
    let flop = db
        .insert(
            t.movie,
            vec![Value::text("the hollow orchard"), Value::int(1999)],
        )
        .unwrap();
    for &a in &trio {
        db.link(t.actor_movie, a, hit).unwrap();
        db.link(t.actor_movie, a, flop).unwrap();
    }
    // Popularity for the hit: many extra credits.
    for i in 0..30 {
        let extra = db
            .insert(
                t.actress,
                vec![Value::text(format!("supporting player {i}"))],
            )
            .unwrap();
        db.link(t.actress_movie, extra, hit).unwrap();
    }

    let engine = Engine::build(
        &db,
        CiRankConfig {
            weights: WeightConfig::imdb_default(),
            ..Default::default()
        },
    )
    .unwrap();
    let query = "bloomfield woodward mortenhall";
    let pool = engine.candidate_pool(query, 10).unwrap();
    assert!(pool.len() >= 2, "both movies connect the trio");

    let ci = engine.rank(query, &pool, Ranker::CiRank).unwrap();
    assert!(
        ci[0].nodes.iter().any(|n| n.text.contains("golden")),
        "CI-Rank picks the popular movie"
    );

    // BANKS only scores root + leaves: the two star answers (movie as the
    // interior connector) are indistinguishable up to prestige of the
    // *leaves*, which are identical. Find the two 4-node star answers.
    let banks = engine.rank(query, &pool, Ranker::Banks).unwrap();
    let stars: Vec<_> = banks
        .iter()
        .filter(|a| a.tree.size() == 4 && a.nodes.iter().any(|n| n.relation == "movie"))
        .collect();
    assert!(stars.len() >= 2);
    assert!(
        (stars[0].score - stars[1].score).abs() < 1e-9,
        "BANKS ties the two movies: {} vs {}",
        stars[0].score,
        stars[1].score
    );
}
