//! Table I of the paper, as an integration test: the four qualitative
//! benefits of RWMP must all hold (the eval harness builds each scenario
//! and compares scores through the full public API).

// LINT-EXEMPT(tests): integration tests may unwrap/index freely; the
// workspace lint wall applies to library code only (ISSUE 1).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

#[test]
fn table1_all_properties_hold() {
    let table = ci_eval::experiments::table1_benefits();
    assert_eq!(table.rows.len(), 4);
    for row in &table.rows {
        assert_eq!(
            row[3], "true",
            "property {:?} failed: favored {} vs other {}",
            row[0], row[1], row[2]
        );
    }
}

#[test]
fn table2_matches_the_paper() {
    let table = ci_eval::experiments::table2_weights();
    // 5 IMDB edge kinds + 3 DBLP edge kinds.
    assert_eq!(table.rows.len(), 8);
    // Spot-check the asymmetric citation row.
    let cites = table.rows.iter().find(|r| r[1] == "cites").unwrap();
    assert_eq!((cites[2].as_str(), cites[3].as_str()), ("0.5", "0.1"));
    // And a forward/backward symmetric one.
    let am = table.rows.iter().find(|r| r[1] == "actor_movie").unwrap();
    assert_eq!((am[2].as_str(), am[3].as_str()), ("1", "1"));
}
